// Package stems is an adaptive query processor built from State Modules
// (SteMs) and an eddy tuple router, reproducing "Using State Modules for
// Adaptive Query Processing" (Raman, Deshpande, Hellerstein — ICDE 2003).
//
// Instead of fixing a query plan, the engine instantiates one access module
// per access method, one selection module per predicate, and one SteM (a
// "half-join": a dictionary handling builds and probes) per base table, then
// routes tuples among them under the correctness constraints of the paper's
// Table 2. Join order, join algorithm, access-method choice and spanning
// tree all emerge from routing and adapt continuously at run time.
//
// Quick start:
//
//	q := stems.NewQuery().
//		Table("R", stems.Ints("key", "a"), [][]int64{{1, 10}, {2, 20}}).
//		Table("S", stems.Ints("x", "y"), [][]int64{{10, 100}, {20, 200}}).
//		Scan("R", 10*time.Millisecond).
//		Scan("S", 10*time.Millisecond).
//		Where("R.a", "=", "S.x")
//	res, err := q.Run(stems.Options{})
//
// Two engines execute the same modules: a deterministic discrete-event
// simulator on a virtual clock (the default; regenerates the paper's
// time-series figures exactly) and a concurrent goroutine-per-module engine
// on a (compressible) real clock.
package stems

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/pred"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/source"
	"repro/internal/stem"
	"repro/internal/trace"
	"repro/internal/tuple"
	"repro/internal/value"
)

// Value is a scalar query value (integer or string).
type Value = value.V

// Int wraps an integer as a query value.
func Int(i int64) Value { return value.NewInt(i) }

// Str wraps a string as a query value.
func Str(s string) Value { return value.NewStr(s) }

// Col declares a typed column.
type Col struct {
	Name string
	Str  bool
}

// Ints declares integer columns with the given names.
func Ints(names ...string) []Col {
	out := make([]Col, len(names))
	for i, n := range names {
		out[i] = Col{Name: n}
	}
	return out
}

// Engine selects the execution engine.
type Engine int

const (
	// Sim is the deterministic discrete-event simulator (default).
	Sim Engine = iota
	// Concurrent runs a goroutine per module worker over channels.
	Concurrent
)

// Policy selects the routing policy.
type Policy int

const (
	// BenefitCost is the paper's Section 4.1 online policy (default).
	BenefitCost Policy = iota
	// Fixed is the deterministic n-ary-SHJ priority order.
	Fixed
	// Lottery is the ticket-based policy of the original eddies paper.
	Lottery
)

// Options configures a run.
type Options struct {
	Engine Engine
	Policy Policy
	// Context, when non-nil, cancels the run: deadlines, client
	// disconnects, and server shutdown stop the eddy mid-query instead of
	// letting it route to completion. The run returns the results produced
	// so far plus an error wrapping Context.Err(). RunContext sets this
	// from its argument.
	Context context.Context
	// Seed feeds the randomized policies; 0 means 1.
	Seed int64
	// TimeCompression scales the Concurrent engine's clock: 0.001 (default)
	// runs one virtual second per wall millisecond.
	TimeCompression float64
	// BatchSize caps how many tuples the Concurrent engine's eddy coalesces
	// into one module batch, amortizing channel sends, module locking, and
	// policy decisions. 0 defaults to 64; 1 restores tuple-at-a-time
	// dataflow. The simulation engine always runs batches of one (it is the
	// deterministic reference) and ignores this option.
	BatchSize int
	// RowBatches disables the Concurrent engine's columnar fast path, which
	// by default carries batches as typed column vectors (int64 arrays,
	// dictionary-encoded strings, null/EOT bitmaps) with a selection vector,
	// falling back to row tuples only where semantics require them. Results
	// are identical either way; set this only to compare representations or
	// to work around a columnar-path regression. Ignored when BatchSize is 1
	// and by the simulation engine, which are always row-at-a-time.
	RowBatches bool
	// Shards hash-partitions every SteM into this many independent
	// sub-stores (rounded up to a power of two), each with its own
	// dictionary and lock; the Concurrent engine gives each shard its own
	// worker so builds and probes on different shards of one SteM proceed
	// fully in parallel. 0 or 1 keeps single-store SteMs — the exact
	// historical behaviour, which the simulator's figure reproductions
	// assume. Results are identical at any shard count; only scheduling
	// changes. Windowed tables (see Window) stay unsharded: window eviction
	// order is global state.
	Shards int
	// BounceForIndexChoice makes SteMs on tables with index AMs bounce
	// incomplete probes so the eddy can hybridize index and hash joins
	// (Section 4.3).
	BounceForIndexChoice bool
	// SkipBuildTable names a table to run in the Section 3.5 relaxed mode:
	// its tuples are never materialized and act as pure probers. Empty
	// disables.
	SkipBuildTable string
	// Window bounds SteM sizes per table name for sliding-window streaming
	// queries (0 or absent = unbounded).
	Window map[string]int
	// MemoryBudget, when >0, places all SteMs under a shared memory
	// governor in its modeled mode: at most this many rows stay resident,
	// allocated in proportion to observed probe frequency; spilled rows add
	// SpillPenalty (default 20ms) to probes proportionally (Section 6).
	// Rows never actually leave memory — this is the simulator's
	// deterministic cost model of spilling. For real disk spill use
	// MemoryBudgetBytes instead; the two are mutually exclusive.
	MemoryBudget int
	// SpillPenalty is the full-spill probe penalty under MemoryBudget.
	SpillPenalty time.Duration
	// MemoryBudgetBytes, when >0, turns on real out-of-core SteMs: at most
	// this many bytes of row footprint stay resident across all SteMs
	// (allocated in proportion to observed probe frequency, with hot
	// partitions recalled from disk when their allocation regains room);
	// the rest is written to per-partition spill segments under SpillDir
	// and the results they owe are regenerated by a Grace-join-style replay
	// pass after the sources are exhausted. Results are set-identical to an
	// unbounded run at any budget, on either engine. Spill files live in a
	// private per-run directory and are removed when Run returns, including
	// on cancellation. Windowed tables (see Window) and custom dictionaries
	// govern their own memory and are exempt from the budget: their rows
	// stay resident and unaccounted.
	MemoryBudgetBytes int64
	// SpillDir is the directory spill segments are created under when
	// MemoryBudgetBytes is set; empty defaults to os.TempDir(). Each run
	// confines its segments to a fresh subdirectory via an os.Root.
	SpillDir string
	// Shared attaches pre-built shared SteM state by table name (see
	// Query.BuildSharedState): the named tables get probe-only attached
	// SteMs over the sealed shared dictionaries instead of private builds,
	// and their access methods are not run — the state already holds every
	// row. Results are multiset-identical to a run without attachments. At
	// least one table must stay unattached (its scan drives the dataflow),
	// and any number of concurrent Runs may attach the same state. Shared
	// tables ignore Shards (the state's shard count wins) and cannot be
	// windowed, governed, or given custom dictionaries.
	Shared map[string]*SharedState
	// Deadline stops the simulation engine at the given virtual time
	// (for continuous queries); zero runs to completion.
	Deadline time.Duration
	// OnResult, if non-nil, streams each result as it is produced.
	OnResult func(Row)
	// OnPartial, if non-nil, streams intermediate partial results — tuples
	// spanning two or more (but not all) tables — as modules emit them.
	// These are the online-metric currency of the paper's interactive FFF
	// setting (Section 3.4). Simulation engine only.
	OnPartial func(Row)
	// Explain collects per-module execution statistics into Result.Explain.
	// Both engines support it; the simulation engine additionally reports
	// the emission span histogram.
	Explain bool
}

// Row is one result: a full concatenation of base-table components.
type Row struct {
	// At is the virtual time the result was emitted.
	At time.Duration
	q  *query.Q
	t  *tuple.Tuple
}

// Get returns the value of "Table.column"; ok is false if the reference is
// unknown or — for partial results — the row does not span that table.
func (r Row) Get(ref string) (Value, bool) {
	ti, ci, err := resolveRef(r.q, ref)
	if err != nil || !r.t.Span.Has(ti) {
		return Value{}, false
	}
	return r.t.Value(ti, ci), true
}

// String renders the row as Table(v1,v2) pairs in FROM order; tables a
// partial result does not span render as Table(?).
func (r Row) String() string {
	var b strings.Builder
	for i, tb := range r.q.Tables {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(tb.Name)
		if r.t.Span.Has(i) {
			b.WriteString(r.t.Comp[i].String())
		} else {
			b.WriteString("(?)")
		}
	}
	return b.String()
}

// Result is a completed (or deadline-stopped) query run.
type Result struct {
	Rows []Row
	// Stats summarizes the run.
	Stats RunStats
	// Explain holds the per-module execution report when Options.Explain
	// was set.
	Explain string
}

// RunStats carries run-level counters.
type RunStats struct {
	// RoutingSteps is the number of eddy routing decisions.
	RoutingSteps uint64
	// IndexProbes counts remote index lookups across all AMs.
	IndexProbes uint64
	// SteMBuilds counts rows materialized across all SteMs.
	SteMBuilds uint64
	// SpilledBuilds counts rows written to disk spill segments
	// (MemoryBudgetBytes runs only).
	SpilledBuilds uint64
	// ReplayMatches counts results regenerated by the spill replay pass.
	ReplayMatches uint64
	// Duration is the virtual completion time.
	Duration time.Duration
}

// Query under construction. Methods panic on structurally invalid input at
// Run time (with a descriptive error), not during building.
type Query struct {
	tables []*schema.Table
	data   map[string]*source.Table
	order  map[string]int
	preds  []pred.P
	ams    []query.AMDecl
	errs   []error
}

// NewQuery starts an empty query.
func NewQuery() *Query {
	return &Query{data: make(map[string]*source.Table), order: make(map[string]int)}
}

// Table adds a base table with integer/string columns and row data. Integer
// columns take their values from rows; declare string columns with Col{Str:
// true} and supply values via TableValues instead.
func (q *Query) Table(name string, cols []Col, rows [][]int64) *Query {
	vrows := make([][]Value, len(rows))
	for i, r := range rows {
		vr := make([]Value, len(r))
		for j, v := range r {
			vr[j] = Int(v)
		}
		vrows[i] = vr
	}
	return q.TableValues(name, cols, vrows)
}

// TableValues adds a base table with explicit Value rows.
func (q *Query) TableValues(name string, cols []Col, rows [][]Value) *Query {
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		k := value.Int
		if c.Str {
			k = value.Str
		}
		sc[i] = schema.Column{Name: c.Name, Kind: k}
	}
	sch, err := schema.NewTable(name, sc...)
	if err != nil {
		q.errs = append(q.errs, err)
		return q
	}
	trows := make([]tuple.Row, len(rows))
	for i, r := range rows {
		trows[i] = tuple.Row(r)
	}
	data, err := source.NewTable(sch, trows)
	if err != nil {
		q.errs = append(q.errs, err)
		return q
	}
	if _, dup := q.order[name]; dup {
		q.errs = append(q.errs, fmt.Errorf("stems: duplicate table %q", name))
		return q
	}
	q.order[name] = len(q.tables)
	q.tables = append(q.tables, sch)
	q.data[name] = data
	return q
}

// Scan declares a scan access method on the table, delivering one row per
// interArrival.
func (q *Query) Scan(table string, interArrival time.Duration) *Query {
	return q.ScanWithStalls(table, interArrival)
}

// Stall describes a scan delivery gap (a delayed Web source).
type Stall struct {
	AfterRows int
	For       time.Duration
}

// ScanWithStalls declares a scan access method with delivery gaps.
func (q *Query) ScanWithStalls(table string, interArrival time.Duration, stalls ...Stall) *Query {
	ti, ok := q.order[table]
	if !ok {
		q.errs = append(q.errs, fmt.Errorf("stems: Scan on unknown table %q", table))
		return q
	}
	spec := source.ScanSpec{InterArrival: dur(interArrival)}
	for _, s := range stalls {
		spec.Stalls = append(spec.Stalls, source.Stall{AfterRows: s.AfterRows, For: dur(s.For)})
	}
	q.ams = append(q.ams, query.AMDecl{Table: ti, Kind: query.Scan, Data: q.data[table], ScanSpec: spec})
	return q
}

// Index declares an asynchronous index access method on the table over the
// named key columns, with the given per-lookup latency and concurrency.
func (q *Query) Index(table string, keyCols []string, latency time.Duration, parallel int) *Query {
	ti, ok := q.order[table]
	if !ok {
		q.errs = append(q.errs, fmt.Errorf("stems: Index on unknown table %q", table))
		return q
	}
	cols := make([]int, len(keyCols))
	for i, c := range keyCols {
		ci := q.tables[ti].ColIndex(c)
		if ci < 0 {
			q.errs = append(q.errs, fmt.Errorf("stems: Index on unknown column %s.%s", table, c))
			return q
		}
		cols[i] = ci
	}
	q.ams = append(q.ams, query.AMDecl{Table: ti, Kind: query.Index, Data: q.data[table],
		IndexSpec: source.IndexSpec{KeyCols: cols, Latency: dur(latency), Parallel: parallel}})
	return q
}

// Mirror declares an additional access method backed by different data for
// the same logical table — a competing source (Section 3.2). kind is "scan"
// or "index".
func (q *Query) Mirror(table string, rows [][]int64, interArrival time.Duration) *Query {
	ti, ok := q.order[table]
	if !ok {
		q.errs = append(q.errs, fmt.Errorf("stems: Mirror on unknown table %q", table))
		return q
	}
	trows := make([]tuple.Row, len(rows))
	for i, r := range rows {
		vr := make(tuple.Row, len(r))
		for j, v := range r {
			vr[j] = Int(v)
		}
		trows[i] = vr
	}
	data, err := source.NewTable(q.tables[ti], trows)
	if err != nil {
		q.errs = append(q.errs, err)
		return q
	}
	q.ams = append(q.ams, query.AMDecl{Table: ti, Kind: query.Scan, Data: data,
		ScanSpec: source.ScanSpec{InterArrival: dur(interArrival)}})
	return q
}

// Where adds a predicate. left must be "Table.column"; op is one of
// = <> < <= > >=; right is either "Table.column" (a join) or a constant
// integer literal, e.g. Where("R.a", "=", "S.x") or Where("R.key", "<=", "10").
func (q *Query) Where(left, op, right string) *Query {
	o, err := parseOp(op)
	if err != nil {
		q.errs = append(q.errs, err)
		return q
	}
	lt, lc, err := q.resolve(left)
	if err != nil {
		q.errs = append(q.errs, err)
		return q
	}
	if strings.Contains(right, ".") {
		rt, rc, err := q.resolve(right)
		if err != nil {
			q.errs = append(q.errs, err)
			return q
		}
		q.preds = append(q.preds, pred.Join(lt, lc, o, rt, rc))
		return q
	}
	i, err := strconv.ParseInt(right, 10, 64)
	if err != nil {
		// Treat as a string constant.
		q.preds = append(q.preds, pred.Selection(lt, lc, o, Str(right)))
		return q
	}
	q.preds = append(q.preds, pred.Selection(lt, lc, o, Int(i)))
	return q
}

func (q *Query) resolve(ref string) (int, int, error) {
	parts := strings.SplitN(ref, ".", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("stems: column reference %q is not Table.column", ref)
	}
	ti, ok := q.order[parts[0]]
	if !ok {
		return 0, 0, fmt.Errorf("stems: unknown table in %q", ref)
	}
	ci := q.tables[ti].ColIndex(parts[1])
	if ci < 0 {
		return 0, 0, fmt.Errorf("stems: unknown column in %q", ref)
	}
	return ti, ci, nil
}

func resolveRef(q *query.Q, ref string) (int, int, error) {
	parts := strings.SplitN(ref, ".", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("stems: column reference %q is not Table.column", ref)
	}
	for ti, t := range q.Tables {
		if t.Name == parts[0] {
			if ci := t.ColIndex(parts[1]); ci >= 0 {
				return ti, ci, nil
			}
		}
	}
	return 0, 0, fmt.Errorf("stems: unknown reference %q", ref)
}

func parseOp(op string) (pred.Op, error) {
	switch op {
	case "=", "==":
		return pred.Eq, nil
	case "<>", "!=":
		return pred.Ne, nil
	case "<":
		return pred.Lt, nil
	case "<=":
		return pred.Le, nil
	case ">":
		return pred.Gt, nil
	case ">=":
		return pred.Ge, nil
	default:
		return 0, fmt.Errorf("stems: unknown operator %q", op)
	}
}

func dur(d time.Duration) clock.Duration { return clock.Duration(d) }

// Build validates the query and returns the internal representation; most
// callers use Run.
func (q *Query) Build() (*query.Q, error) {
	if len(q.errs) > 0 {
		return nil, q.errs[0]
	}
	return query.New(q.tables, q.preds, q.ams)
}

// SharedState is catalog-style shared SteM state over one table's rows:
// sealed, immutable dictionaries (plus spill segments beyond a byte budget)
// built once with Query.BuildSharedState and attached by any number of
// concurrent Runs via Options.Shared. Close releases its spill files; it
// must not be called while a Run is attached.
type SharedState struct {
	inner *stem.SharedState
	table string
}

// Rows returns the number of distinct rows the state stores.
func (s *SharedState) Rows() int { return s.inner.Rows() }

// SpilledRows returns how many of them live in sealed spill segments.
func (s *SharedState) SpilledRows() int { return s.inner.SpilledRows() }

// Close releases the state's spill segments. Idempotent.
func (s *SharedState) Close() error { return s.inner.Close() }

// BuildSharedState builds sealed shared SteM state over the named table's
// rows, indexed on the table's join columns in this query — what a server
// catalog does once per (table, join columns) so concurrent queries attach
// instead of rebuilding. shards partitions the state (rounded up to a power
// of two; attached SteMs adopt it); budgetBytes bounds the resident
// footprint with the excess written to spill segments under spillDir (0
// keeps everything resident).
func (q *Query) BuildSharedState(table string, shards int, budgetBytes int64, spillDir string) (*SharedState, error) {
	iq, err := q.Build()
	if err != nil {
		return nil, err
	}
	ti, ok := q.order[table]
	if !ok {
		return nil, fmt.Errorf("stems: BuildSharedState table %q unknown", table)
	}
	cols := stem.JoinCols(iq, ti)
	if len(cols) == 0 {
		return nil, fmt.Errorf("stems: table %q has no join columns to index shared state on", table)
	}
	inner, err := stem.BuildShared(stem.SharedConfig{
		KeyCols:     cols,
		Shards:      shards,
		BudgetBytes: budgetBytes,
		SpillDir:    spillDir,
	}, q.data[table].Rows)
	if err != nil {
		return nil, err
	}
	return &SharedState{inner: inner, table: table}, nil
}

// RunContext executes the query under a cancellation context: when ctx is
// canceled the engine stops routing and RunContext returns the results
// produced so far plus an error wrapping ctx.Err(). It is Run with
// Options.Context set.
func (q *Query) RunContext(ctx context.Context, opts Options) (*Result, error) {
	opts.Context = ctx
	return q.Run(opts)
}

// Run executes the query and collects all results.
func (q *Query) Run(opts Options) (*Result, error) {
	iq, err := q.Build()
	if err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	ropts := eddy.Options{Policy: newPolicy(opts.Policy, seed), Shards: opts.Shards}
	if opts.BounceForIndexChoice {
		ropts.ProbeBounce = stem.BounceIfIndexAM
	}
	if opts.SkipBuildTable != "" {
		ti, ok := q.order[opts.SkipBuildTable]
		if !ok {
			return nil, fmt.Errorf("stems: SkipBuildTable %q unknown", opts.SkipBuildTable)
		}
		ropts.SkipBuild = true
		ropts.SkipBuildTable = ti
	}
	var spillGov *stem.Governor
	switch {
	case opts.MemoryBudgetBytes > 0:
		if opts.MemoryBudget > 0 {
			return nil, fmt.Errorf("stems: MemoryBudget (modeled) and MemoryBudgetBytes (real spill) are mutually exclusive")
		}
		dir := opts.SpillDir
		if dir == "" {
			dir = os.TempDir()
		}
		g, err := stem.NewSpillGovernor(opts.MemoryBudgetBytes, stem.AllocByProbes, dir)
		if err != nil {
			return nil, err
		}
		spillGov = g
		defer spillGov.Close()
		ropts.Governor = spillGov
	case opts.MemoryBudget > 0:
		pen := opts.SpillPenalty
		if pen == 0 {
			pen = 20 * time.Millisecond
		}
		ropts.Governor = stem.NewGovernor(opts.MemoryBudget, stem.AllocByProbes, clock.Duration(pen))
	}
	if len(opts.Window) > 0 {
		wins := make([]int, len(q.tables))
		for name, w := range opts.Window {
			ti, ok := q.order[name]
			if !ok {
				return nil, fmt.Errorf("stems: Window table %q unknown", name)
			}
			wins[ti] = w
		}
		ropts.WindowFor = func(t int) int { return wins[t] }
	}
	if len(opts.Shared) > 0 {
		states := make([]*stem.SharedState, len(q.tables))
		for name, ss := range opts.Shared {
			ti, ok := q.order[name]
			if !ok {
				return nil, fmt.Errorf("stems: Shared table %q unknown", name)
			}
			if ss == nil || ss.inner == nil {
				return nil, fmt.Errorf("stems: Shared state for %q is nil", name)
			}
			states[ti] = ss.inner
		}
		ropts.SharedFor = func(t int) *stem.SharedState { return states[t] }
	}
	r, err := eddy.NewRouter(iq, ropts)
	if err != nil {
		return nil, err
	}

	var outs []eddy.Output
	var collector *trace.Collector
	switch opts.Engine {
	case Concurrent:
		if opts.OnPartial != nil {
			return nil, fmt.Errorf("stems: OnPartial requires the simulation engine")
		}
		comp := opts.TimeCompression
		if comp == 0 {
			comp = 0.001
		}
		eng := eddy.NewConcurrent(r, clock.NewReal(comp))
		eng.BatchSize = opts.BatchSize
		eng.Columnar = !opts.RowBatches
		if opts.OnResult != nil {
			eng.OnOutput = func(t *tuple.Tuple, at clock.Time) {
				opts.OnResult(Row{At: time.Duration(at), q: iq, t: t})
			}
		}
		if opts.Explain {
			collector = trace.NewCollector(r.Modules())
			collector.AttachConcurrent(eng)
		}
		ctx := opts.Context
		if ctx == nil {
			ctx = context.Background()
		}
		outs, err = eng.RunContext(ctx)
	default:
		sim := eddy.NewSim(r)
		sim.Deadline = clock.Time(opts.Deadline)
		sim.Ctx = opts.Context
		if opts.OnResult != nil {
			sim.OnOutput = func(t *tuple.Tuple, at clock.Time) {
				opts.OnResult(Row{At: time.Duration(at), q: iq, t: t})
			}
		}
		if opts.OnPartial != nil {
			all := iq.AllTables()
			sim.OnEmit = func(t *tuple.Tuple, at clock.Time) {
				if t.EOT == nil && !t.Seed && t.Span.Count() >= 2 && t.Span != all {
					opts.OnPartial(Row{At: time.Duration(at), q: iq, t: t})
				}
			}
		}
		if opts.Explain {
			collector = trace.NewCollector(r.Modules())
			collector.Attach(sim)
		}
		outs, err = sim.Run()
	}
	if err != nil {
		return nil, err
	}
	if spillGov != nil {
		if serr := spillGov.Err(); serr != nil {
			return nil, fmt.Errorf("stems: spill I/O failed (results fell back to resident storage): %w", serr)
		}
	}
	for name, ss := range opts.Shared {
		if serr := ss.inner.Err(); serr != nil {
			return nil, fmt.Errorf("stems: shared state for %q failed a spill read (results may be incomplete): %w", name, serr)
		}
	}
	if n := r.Stuck(); n > 0 {
		return nil, fmt.Errorf("stems: internal error — %d tuples had no legal route", n)
	}

	res := buildResult(iq, r, outs)
	if collector != nil {
		res.Explain = collector.Report()
	}
	return res, nil
}

// newPolicy instantiates the routing policy for a run; seed must already be
// defaulted.
func newPolicy(p Policy, seed int64) policy.Policy {
	switch p {
	case Fixed:
		return policy.NewFixed()
	case Lottery:
		return policy.NewLottery(seed)
	default:
		return policy.NewBenefitCost(seed)
	}
}

// buildResult assembles a Result from engine outputs and the router's
// cumulative counters.
func buildResult(iq *query.Q, r *eddy.Router, outs []eddy.Output) *Result {
	res := &Result{}
	for _, o := range outs {
		res.Rows = append(res.Rows, Row{At: time.Duration(o.At), q: iq, t: o.T})
		if time.Duration(o.At) > res.Stats.Duration {
			res.Stats.Duration = time.Duration(o.At)
		}
	}
	res.Stats.RoutingSteps = r.Routed()
	for _, a := range r.AMs() {
		res.Stats.IndexProbes += a.Stats().Probes
	}
	for _, s := range r.SteMs() {
		st := s.Stats()
		res.Stats.SteMBuilds += st.Builds
		res.Stats.SpilledBuilds += st.SpilledBuilds
		res.Stats.ReplayMatches += st.ReplayMatches
	}
	return res
}
