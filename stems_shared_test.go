package stems

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// sharedJoin is the equivalence workload: a 3-way join with duplicate source
// rows (set-semantics dedup must agree between private builds and the shared
// build), a selection on an attached table (verified at concatenation), and
// enough rows that sharding and spill both engage.
func sharedJoin() *Query {
	var r, s, u [][]int64
	for i := 0; i < 30; i++ {
		r = append(r, []int64{int64(i), int64(i % 10)})
	}
	r = append(r, []int64{5, 5}, []int64{5, 5}) // duplicate full rows
	for i := 0; i < 40; i++ {
		s = append(s, []int64{int64(i % 10), int64(i % 7), int64(i)})
	}
	s = append(s, []int64{3, 3, 3}, []int64{3, 3, 3})
	for i := 0; i < 25; i++ {
		u = append(u, []int64{int64(i % 7), int64(i * 4)})
	}
	u = append(u, []int64{2, 8}, []int64{2, 8})
	return NewQuery().
		Table("R", Ints("key", "a"), r).
		Table("S", Ints("x", "b", "sid"), s).
		Table("U", Ints("c", "d"), u).
		Scan("R", 20*time.Microsecond).
		Scan("S", 20*time.Microsecond).
		Scan("U", 20*time.Microsecond).
		Where("R.a", "=", "S.x").
		Where("S.b", "=", "U.c").
		Where("U.d", "<", "90")
}

// TestSharedStemsAgree proves the tentpole's correctness claim: N concurrent
// queries attached to one shared build of S and U return results
// multiset-identical to a private-state run, across {shards 1,4} ×
// {columnar on/off} × {spill budget ∞, constrained}. Runs under -race in CI
// (root package, full race job), so the lock-free shared-dictionary reads
// are exercised concurrently.
func TestSharedStemsAgree(t *testing.T) {
	want := keysOf(mustRun(t, sharedJoin(), Options{Engine: Concurrent, TimeCompression: 0.0001}).Rows)
	if len(want) == 0 {
		t.Fatal("workload produced no rows; the equivalence check would be vacuous")
	}
	const concurrent = 4
	for _, shards := range []int{1, 4} {
		for _, rowBatches := range []bool{false, true} {
			for _, budget := range []int64{0, 600} {
				name := fmt.Sprintf("shards=%d/rowBatches=%v/budget=%d", shards, rowBatches, budget)
				t.Run(name, func(t *testing.T) {
					base := sharedJoin()
					sharedS, err := base.BuildSharedState("S", shards, budget, t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					defer sharedS.Close()
					sharedU, err := base.BuildSharedState("U", shards, budget, t.TempDir())
					if err != nil {
						t.Fatal(err)
					}
					defer sharedU.Close()
					if budget > 0 && sharedS.SpilledRows() == 0 {
						t.Fatal("constrained budget spilled nothing; the disk path is untested")
					}
					if budget == 0 && (sharedS.SpilledRows() != 0 || sharedU.SpilledRows() != 0) {
						t.Fatal("unbounded budget must stay fully resident")
					}
					var wg sync.WaitGroup
					errs := make([]error, concurrent)
					for g := 0; g < concurrent; g++ {
						wg.Add(1)
						go func(g int) {
							defer wg.Done()
							res, err := sharedJoin().Run(Options{
								Engine:          Concurrent,
								TimeCompression: 0.0001,
								Shards:          shards,
								RowBatches:      rowBatches,
								Shared:          map[string]*SharedState{"S": sharedS, "U": sharedU},
							})
							if err != nil {
								errs[g] = err
								return
							}
							got := keysOf(res.Rows)
							if len(got) != len(want) {
								errs[g] = fmt.Errorf("%d rows, want %d", len(got), len(want))
								return
							}
							for i := range want {
								if got[i] != want[i] {
									errs[g] = fmt.Errorf("row %d = %q, want %q", i, got[i], want[i])
									return
								}
							}
							if res.Stats.SteMBuilds == 0 {
								errs[g] = fmt.Errorf("driver table R built nothing")
							}
						}(g)
					}
					wg.Wait()
					for g, err := range errs {
						if err != nil {
							t.Errorf("goroutine %d: %v", g, err)
						}
					}
				})
			}
		}
	}
}

// TestSharedStemsSimEngine pins that attachments also work on the
// deterministic simulation engine (same results, same mechanism).
func TestSharedStemsSimEngine(t *testing.T) {
	want := keysOf(mustRun(t, sharedJoin(), Options{Engine: Sim}).Rows)
	base := sharedJoin()
	sharedU, err := base.BuildSharedState("U", 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sharedU.Close()
	res, err := sharedJoin().Run(Options{Engine: Sim, Shared: map[string]*SharedState{"U": sharedU}})
	if err != nil {
		t.Fatal(err)
	}
	got := keysOf(res.Rows)
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestSharedStemsRejectsFullAttachment pins the router-level guard: a query
// whose every table is attached has nothing to drive the dataflow.
func TestSharedStemsRejectsFullAttachment(t *testing.T) {
	base := smallJoin()
	sharedR, err := base.BuildSharedState("R", 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sharedR.Close()
	sharedS, err := base.BuildSharedState("S", 1, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer sharedS.Close()
	_, err = smallJoin().Run(Options{Shared: map[string]*SharedState{"R": sharedR, "S": sharedS}})
	if err == nil {
		t.Fatal("attaching every table must be rejected")
	}
}
