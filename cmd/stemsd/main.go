// Command stemsd is the long-lived SteM query server: it keeps a shared
// catalog of CSV-backed tables (loaded at startup via -t and at run time
// via REGISTER TABLE statements) and serves SQL over HTTP/JSON, streaming
// result rows as NDJSON while the eddy routes.
//
// Start it and query it:
//
//	stemsd -addr :8080 -t people=people.csv -t orders=orders.csv
//
//	curl -s localhost:8080/query -d '{"sql":
//	  "SELECT people.name, orders.total FROM people, orders
//	   WHERE people.id = orders.person"}'
//
//	curl -s localhost:8080/query \
//	  -d '{"sql":"REGISTER TABLE items FROM '\''items.csv'\'' INDEX id LATENCY 50ms"}'
//
// Hot queries prepare once and execute many times against the plan cache
// (pooled router/engine shells, invalidated when REGISTER changes the
// catalog; ad-hoc SELECTs auto-prepare under their canonical text):
//
//	curl -s localhost:8080/query -d '{"sql":
//	  "PREPARE hot AS SELECT people.name, orders.total
//	   FROM people, orders WHERE people.id = orders.person"}'
//
//	curl -s localhost:8080/query -d '{"sql":"EXECUTE hot"}'
//
// GET /plans lists prepared statements and cached plans; -plan-cache sizes
// the cache.
//
// Live ingestion and standing queries: INSERT INTO t VALUES (...) —
// or POST /insert with {"table":..., "rows":[[...],...]} — appends rows to
// a registered table (cached plans invalidate, shared SteMs rebuild
// lazily). POST /query with "subscribe": true turns a SELECT into a
// standing query: the response streams the current result set, a
// {"snapshot":true} marker, and then only the delta rows each insert
// produces, until the client disconnects, the table is replaced by a
// REGISTER, or the server drains.
//
// Admission control bounds concurrent queries (-max-inflight) and the wait
// queue (-queue); per-query deadlines default to -deadline and are capped
// at -max-deadline.
//
// Observability: /healthz reports liveness (always 200 while the process
// serves), /readyz readiness (503 with {"draining":true} once shutdown
// begins), /metrics exposes Prometheus-style counters and latency
// histograms, and GET /queries serves the completed-queries ring
// (?min_ms=N filters to slow queries; -completed-queries sizes it,
// -slow-query-ms also logs them). POST /query with "explain": true streams
// results then a final NDJSON trace record with per-module stats and the
// routing policy's learned state. Structured logs go to stderr (-log-level,
// -log-json); -pprof additionally serves the Go profiling endpoints under
// /debug/pprof/ (off by default), and -pprof-labels tags each query's
// goroutines with its query ID so CPU profiles attribute to queries.
// SIGINT/SIGTERM drains: in-flight queries get
// -drain to finish, stragglers are canceled (cancellation stops the eddy's
// routing, it does not abandon goroutines), and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"repro/internal/eddy"
	"repro/internal/server"
)

type repeatable []string

func (r *repeatable) String() string     { return strings.Join(*r, ",") }
func (r *repeatable) Set(v string) error { *r = append(*r, v); return nil }

// version feeds the stemsd_build_info metric: the module version when built
// with version info (go install m@v), else the VCS revision, else "dev".
var version = func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			return s.Value[:12]
		}
	}
	return "dev"
}()

// buildLogger constructs the server's structured logger; level "off"
// returns nil, which disables per-query logging entirely.
func buildLogger(level string, asJSON bool) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "off", "none":
		return nil, nil
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error, or off)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	if asJSON {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
}

func main() {
	var tables, indexes repeatable
	addr := flag.String("addr", ":8080", "listen address")
	flag.Var(&tables, "t", "table as name=path.csv (repeatable)")
	flag.Var(&indexes, "index", "index access method as table:column:latency (repeatable)")
	dataDir := flag.String("data-dir", ".", "confine REGISTER TABLE statement paths to this directory; -t flag paths are exempt (operator input). Empty disables confinement — do not expose such a server to untrusted clients")
	scanInterval := flag.Duration("scan-interval", time.Microsecond, "virtual inter-arrival pacing of table scans")
	policyName := flag.String("policy", "benefitcost", "default routing policy: fixed, lottery, benefitcost")
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	batch := flag.Int("batch", eddy.DefaultBatchSize, "default eddy batch size for the concurrent engine")
	rowBatches := flag.Bool("row-batches", false, "disable the concurrent engine's columnar batch fast path (row-tuple batches; results are identical)")
	shards := flag.Int("shards", 1, "default SteM shard count")
	compression := flag.Float64("compression", 0.001, "concurrent engine clock compression (1 = real time)")
	maxInflight := flag.Int("max-inflight", 8, "maximum concurrently executing queries")
	queueDepth := flag.Int("queue", 16, "admission queue depth beyond -max-inflight; 0 rejects immediately at capacity")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-query deadline")
	maxDeadline := flag.Duration("max-deadline", 5*time.Minute, "cap on client-requested deadlines")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window for in-flight queries")
	planCache := flag.Int("plan-cache", 0, "plan cache capacity in entries: PREPAREd and ad-hoc SELECT plans are cached with pooled engine shells, keyed by canonical text + knobs and invalidated by REGISTER (0 uses the default of 128; negative disables caching)")
	memBudget := flag.Int64("mem-budget", 0, "per-query resident SteM byte budget; rows beyond it spill to disk and replay (0 disables). Total SteM footprint is bounded by -max-inflight times this")
	spillDir := flag.String("spill-dir", "", "directory for per-query spill segments (each query gets a private subdirectory, removed when it ends); empty uses the system temp dir")
	sharedStems := flag.Bool("shared-stems", false, "share SteM state across queries: the first query joining through a registered table builds its SteM once, concurrent and later queries attach probe-only handles; REGISTER invalidates lazily")
	sharedStemBytes := flag.Int64("shared-stem-bytes", 0, "cap on the total footprint of shared SteM state; least-recently-attached idle states are evicted past it (0 = unlimited)")
	sharedStemSpill := flag.Int64("shared-stem-spill", 0, "per-table resident budget for shared SteM builds; rows beyond it live in sealed spill segments under -spill-dir and are read at probe time (0 = fully resident)")
	pprofOn := flag.Bool("pprof", false, "expose Go pprof profiling endpoints under /debug/pprof/ (opt-in; profiles reveal query shapes, so leave off on untrusted networks)")
	pprofLabels := flag.Bool("pprof-labels", false, "label each query's goroutines with its query ID so CPU profiles attribute samples to queries (costs a small allocation per query)")
	slowQueryMS := flag.Int64("slow-query-ms", 0, "log queries whose execution time reaches this many milliseconds at warn level (0 disables)")
	completedCap := flag.Int("completed-queries", 0, "capacity of the completed-queries ring served by GET /queries (0 uses the default of 256; negative disables)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error, or off")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stemsd: %v\n", err)
		os.Exit(1)
	}

	cat := server.NewCatalog(*scanInterval, *dataDir)
	if err := cat.LoadFlagSpecs(tables, indexes); err != nil {
		fmt.Fprintf(os.Stderr, "stemsd: %v\n", err)
		os.Exit(1)
	}

	srv := server.New(cat, server.Config{
		MaxInFlight:     *maxInflight,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		Policy:          *policyName,
		Seed:            *seed,
		BatchSize:       *batch,
		RowBatches:      *rowBatches,
		Shards:          *shards,
		TimeCompression: *compression,
		MemBudgetBytes:  *memBudget,
		SpillDir:        *spillDir,
		PlanCacheSize:   *planCache,

		SharedStems:          *sharedStems,
		SharedStemBytes:      *sharedStemBytes,
		SharedStemSpillBytes: *sharedStemSpill,

		Logger:       logger,
		PprofLabels:  *pprofLabels,
		SlowQuery:    time.Duration(*slowQueryMS) * time.Millisecond,
		CompletedCap: *completedCap,
		Version:      version,
	})

	handler := srv.Handler()
	if *pprofOn {
		// Explicit registrations instead of the net/http/pprof side-effect
		// import: the profiling surface exists only behind the flag, never
		// on the default mux.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("stemsd: pprof endpoints enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("stemsd: serving on %s with %d tables %v", *addr, cat.Len(), cat.Tables())
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("stemsd: %v — draining (up to %v)", sig, *drain)
	case err := <-errCh:
		log.Fatalf("stemsd: %v", err)
	}

	// Drain: the server rejects new queries, lets running ones finish
	// within the window, then cancels the rest; the HTTP shutdown waits for
	// the same handlers, so both complete together.
	done := make(chan struct{})
	go func() {
		srv.Shutdown(*drain)
		close(done)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("stemsd: http shutdown: %v", err)
	}
	<-done
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("stemsd: %v", err)
	}
	log.Print("stemsd: drained, bye")
}
