// Command experiments regenerates every figure and table of the paper's
// evaluation section on the deterministic simulation engine, printing each
// as a textual table of the corresponding curves plus shape-level findings.
//
// Usage:
//
//	experiments [-run fig1,fig2,fig7,fig8,competitive,spanning,reorder,sweep|all] [-samples N] [-quick]
//
// -quick shrinks the workloads so the full suite runs in well under a
// second; the default sizes match the paper's (Table 3).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/clock"
	"repro/internal/experiments"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment ids (fig1,fig2,fig7,fig8,competitive,spanning,reorder) or 'all'")
	samples := flag.Int("samples", 20, "rows per rendered series table")
	quick := flag.Bool("quick", false, "shrink workloads for a fast smoke run")
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]

	type exp struct {
		id  string
		run func() (*experiments.Result, error)
	}
	var f7 experiments.Fig7Config
	var f8 experiments.Fig8Config
	var f1 experiments.Fig1Config
	var cc experiments.CompetitiveConfig
	var sp experiments.SpanningConfig
	var ro experiments.ReorderConfig
	var mc experiments.MemoryConfig
	if *quick {
		f7 = experiments.Fig7Config{RRows: 200, DistinctA: 50}
		f8 = experiments.Fig8Config{Rows: 200}
		f1 = experiments.Fig1Config{Rows: 100}
		cc = experiments.CompetitiveConfig{Rows: 120, DistinctA: 30}
		sp = experiments.SpanningConfig{Rows: 60, StallAfter: 10, StallFor: 5 * clock.Second}
		ro = experiments.ReorderConfig{Rows: 400}
		mc = experiments.MemoryConfig{Rows: 100}
	}

	list := []exp{
		{"fig1", func() (*experiments.Result, error) { return experiments.Fig1(f1) }},
		{"fig2", func() (*experiments.Result, error) { return experiments.Fig2(f1) }},
		{"fig7", func() (*experiments.Result, error) { return experiments.Fig7(f7) }},
		{"fig8", func() (*experiments.Result, error) { return experiments.Fig8(f8) }},
		{"competitive", func() (*experiments.Result, error) { return experiments.Competitive(cc) }},
		{"spanning", func() (*experiments.Result, error) { return experiments.Spanning(sp) }},
		{"reorder", func() (*experiments.Result, error) { return experiments.Reorder(ro) }},
		{"memory", func() (*experiments.Result, error) { return experiments.Memory(mc) }},
	}

	ok := true
	for _, e := range list {
		if !all && !want[e.id] {
			continue
		}
		res, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			ok = false
			continue
		}
		fmt.Println(res.Render(*samples))
	}

	// Parameter sweeps around the two headline figures.
	if all || want["sweep"] {
		rows := 400
		if *quick {
			rows = 120
		}
		if sw, err := experiments.Fig8LatencySweep(rows, nil); err != nil {
			fmt.Fprintf(os.Stderr, "sweep-fig8: %v\n", err)
			ok = false
		} else {
			fmt.Println(sw.Render())
		}
		if sw, err := experiments.Fig7SelectivitySweep(rows, nil); err != nil {
			fmt.Fprintf(os.Stderr, "sweep-fig7: %v\n", err)
			ok = false
		} else {
			fmt.Println(sw.Render())
		}
	}
	if !ok {
		os.Exit(1)
	}
}
