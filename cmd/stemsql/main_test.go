package main

import (
	"strings"
	"testing"
)

// TestSplitStatements pins the REPL's statement splitter: ';' terminates a
// statement only outside single-quoted strings, several statements may share
// a line, and the trailing unterminated remainder is carried over.
func TestSplitStatements(t *testing.T) {
	cases := []struct {
		name     string
		in       string
		complete []string
		rest     string
	}{
		{"empty", "", nil, ""},
		{"unterminated", "SELECT r.a FROM r", nil, "SELECT r.a FROM r"},
		{"single", "SELECT r.a FROM r;", []string{"SELECT r.a FROM r"}, ""},
		{
			"two on one line",
			"SELECT r.a FROM r; SELECT s.b FROM s;",
			[]string{"SELECT r.a FROM r", " SELECT s.b FROM s"},
			"",
		},
		{
			"semicolon inside string",
			"REGISTER TABLE t FROM 'a;b.csv';",
			[]string{"REGISTER TABLE t FROM 'a;b.csv'"},
			"",
		},
		{
			"string spans split point",
			"SELECT r.a FROM r WHERE r.a = 'x;",
			nil,
			"SELECT r.a FROM r WHERE r.a = 'x;",
		},
		{
			"terminated plus remainder",
			"SELECT r.a FROM r; SELECT s.b",
			[]string{"SELECT r.a FROM r"},
			"SELECT s.b",
		},
		{
			"prepare then execute",
			"PREPARE hot AS SELECT r.a FROM r, s WHERE r.a = s.b; EXECUTE hot;",
			[]string{"PREPARE hot AS SELECT r.a FROM r, s WHERE r.a = s.b", " EXECUTE hot"},
			"",
		},
		{
			"prepare with quoted semicolon in predicate",
			"PREPARE q AS SELECT r.a FROM r WHERE r.a = 'end;';",
			[]string{"PREPARE q AS SELECT r.a FROM r WHERE r.a = 'end;'"},
			"",
		},
		{
			"execute buffered across lines",
			"EXECUTE hot\nEXECUTE warm;",
			[]string{"EXECUTE hot\nEXECUTE warm"},
			"",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			complete, rest := splitStatements(tc.in)
			if len(complete) != len(tc.complete) {
				t.Fatalf("complete = %q, want %q", complete, tc.complete)
			}
			for i := range complete {
				if complete[i] != tc.complete[i] {
					t.Errorf("complete[%d] = %q, want %q", i, complete[i], tc.complete[i])
				}
			}
			if rest != tc.rest {
				t.Errorf("rest = %q, want %q", rest, tc.rest)
			}
		})
	}
}

// TestSplitStatementsRestTrimmed checks the remainder has leading blank
// space stripped so the continuation prompt lines up with real input.
func TestSplitStatementsRestTrimmed(t *testing.T) {
	_, rest := splitStatements("SELECT r.a FROM r; \n\t EXECUTE hot")
	if rest != "EXECUTE hot" {
		t.Fatalf("rest = %q, want %q", rest, "EXECUTE hot")
	}
	if strings.ContainsAny(rest[:1], " \t\n") {
		t.Fatalf("rest %q starts with whitespace", rest)
	}
}
