// Command stemsql executes SQL select-project-join queries over CSV files
// with the adaptive SteM engine — no plans, no optimizer; the eddy routes.
//
// Usage:
//
//	stemsql -t people=people.csv -t orders=orders.csv \
//	        -q "SELECT people.name, orders.total FROM people, orders WHERE people.id = orders.person AND orders.total >= 100"
//
// Without -q, stemsql reads statements from stdin. Statements end with ';'
// and may span lines; a blank line is ignored, and the REPL quits on EOF or
// a lone \q. Tables can be added at run time with
//
//	stemsql> REGISTER TABLE items FROM 'items.csv' INDEX id LATENCY 50ms;
//
// INSERT INTO t VALUES (...) appends rows to a registered table; later
// statements see them (running stemsd subscriptions fed through -server
// receive the delta).
//
// Each source gets a scan access method by default; declare an extra
// asynchronous index with -index table:column:latency, e.g.
// -index people:id:200ms, and pick a routing policy with -policy.
//
// -engine selects the executor: sim (default) is the deterministic
// discrete-event simulator; concurrent runs the goroutine-per-module engine,
// whose eddy moves tuples in batches of -batch (default 64; 1 is
// tuple-at-a-time). -shards hash-partitions each SteM into that many
// sub-stores, giving the concurrent engine one worker per shard.
//
// PREPARE name AS <select> parses a statement once; EXECUTE name reruns it
// (binding against the catalog as it stands at execute time, so tables
// REGISTERed in between are picked up). \plans lists the prepared
// statements.
//
// With -server URL the REPL becomes a client of a running stemsd: every
// statement is sent to the server (PREPARE/EXECUTE then hit its plan cache
// and pooled engine shells), rows stream back as they are produced, and
// \plans shows the server's prepared statements and cached plans.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/sql"
	"repro/internal/stem"
	"repro/internal/trace"
	"repro/internal/tuple"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var tables, indexes tableFlags
	flag.Var(&tables, "t", "source as name=path.csv (repeatable)")
	flag.Var(&indexes, "index", "index access method as table:column:latency (repeatable)")
	q := flag.String("q", "", "SQL statement; omit for a stdin REPL")
	policyName := flag.String("policy", "benefitcost", "routing policy: fixed, lottery, benefitcost")
	engineName := flag.String("engine", "sim", "execution engine: sim (deterministic) or concurrent")
	batch := flag.Int("batch", eddy.DefaultBatchSize, "concurrent engine eddy batch size; 1 is tuple-at-a-time")
	rowBatches := flag.Bool("row-batches", false, "disable the concurrent engine's columnar batch fast path (row-tuple batches; results are identical)")
	shards := flag.Int("shards", 1, "hash-partitioned shards per SteM (rounded up to a power of two); >1 gives the concurrent engine one worker per shard")
	scanInterval := flag.Duration("scan-interval", time.Microsecond, "virtual inter-arrival pacing of scans")
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	timing := flag.Bool("timing", false, "print per-result virtual emission times and run stats")
	explain := flag.Bool("explain", false, "print a per-module adaptive-execution report after the results")
	memBudget := flag.Int64("mem-budget", 0, "resident SteM byte budget per statement; rows beyond it spill to disk and replay (0 disables)")
	spillDir := flag.String("spill-dir", "", "directory for spill segments (a private per-run subdirectory is created and removed); empty uses the system temp dir")
	serverURL := flag.String("server", "", "base URL of a running stemsd (e.g. http://localhost:8080): statements run on the server instead of locally, and \\plans lists its plan cache")
	flag.Parse()

	if *serverURL != "" {
		cli := &remoteClient{base: strings.TrimRight(*serverURL, "/")}
		runOne := func(stmt string, doExplain bool) bool {
			if err := cli.run(stmt, *explain || doExplain); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return false
			}
			return true
		}
		if *q != "" {
			if !runOne(strings.TrimSuffix(strings.TrimSpace(*q), ";"), false) {
				os.Exit(1)
			}
			return
		}
		repl(os.Stdin, runOne, cli.plans)
		return
	}

	cat := server.NewCatalog(*scanInterval, "")
	if err := cat.LoadFlagSpecs(tables, indexes); err != nil {
		fmt.Fprintf(os.Stderr, "stemsql: %v\n", err)
		os.Exit(1)
	}
	prepped := map[string]*sql.Stmt{}
	runOne := func(stmt string, doExplain bool) bool {
		if err := run(stmt, cat, prepped, *policyName, *engineName, *batch, *shards, *rowBatches, *seed, *timing, *explain || doExplain, *memBudget, *spillDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		return true
	}
	localPlans := func() bool {
		if len(prepped) == 0 {
			fmt.Println("-- no prepared statements")
			return true
		}
		names := make([]string, 0, len(prepped))
		for n := range prepped {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%s\t%s\n", n, prepped[n].Canonical())
		}
		return true
	}

	if *q != "" {
		if !runOne(strings.TrimSuffix(strings.TrimSpace(*q), ";"), false) {
			os.Exit(1)
		}
		return
	}
	repl(os.Stdin, runOne, localPlans)
}

// repl reads ';'-terminated statements (possibly spanning lines) until EOF
// or a lone \q. Terminators are recognized only outside single-quoted
// strings, several statements may share a line, blank lines re-prompt
// instead of quitting, and a statement still buffered at EOF runs without
// its terminator — piped single statements work with or without ';'.
// A lone \plans (no terminator) invokes the plans hook: the server's plan
// cache when connected, the local prepared statements otherwise. A lone
// \explain reruns the last statement with the per-module trace enabled
// (locally or, when connected, as an "explain": true server query); before
// any statement has run, it arms the trace for the next one.
func repl(in *os.File, runOne func(stmt string, explain bool) bool, plans func() bool) {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var buf strings.Builder
	var lastStmt string
	armExplain := false
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("stemsql> ")
		} else {
			fmt.Print("    ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if buf.Len() == 0 && (line == `\q` || line == "quit" || line == "exit") {
			return
		}
		if buf.Len() == 0 && line == `\plans` {
			plans()
			prompt()
			continue
		}
		if buf.Len() == 0 && line == `\explain` {
			if lastStmt == "" {
				armExplain = true
				fmt.Println("-- no previous statement; explain armed for the next one")
			} else {
				runOne(lastStmt, true)
			}
			prompt()
			continue
		}
		if line != "" {
			if buf.Len() > 0 {
				buf.WriteByte('\n')
			}
			buf.WriteString(line)
		}
		complete, rest := splitStatements(buf.String())
		buf.Reset()
		buf.WriteString(rest)
		for _, stmt := range complete {
			if stmt = strings.TrimSpace(stmt); stmt != "" {
				runOne(stmt, armExplain)
				armExplain = false
				lastStmt = stmt
			}
		}
		prompt()
	}
	fmt.Println()
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "stemsql: reading input: %v\n", err)
		return
	}
	if stmt := strings.TrimSpace(buf.String()); stmt != "" {
		runOne(stmt, armExplain)
	}
}

// splitStatements splits buffered input on ';' terminators that sit
// outside single-quoted strings (where ” is the escape, so the simple
// quote toggle is exact); rest is the trailing unterminated remainder.
func splitStatements(s string) (complete []string, rest string) {
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'':
			inStr = !inStr
		case s[i] == ';' && !inStr:
			complete = append(complete, s[start:i])
			start = i + 1
		}
	}
	return complete, strings.TrimLeft(s[start:], " \t\n")
}

func run(stmtSrc string, cat *server.Catalog, prepped map[string]*sql.Stmt, policyName, engineName string, batch, shards int, rowBatches bool, seed int64, timing, explain bool, memBudget int64, spillDir string) error {
	parsed, err := sql.ParseStatement(stmtSrc)
	if err != nil {
		return err
	}
	var stmt *sql.Stmt
	switch st := parsed.(type) {
	case *sql.RegisterStmt:
		rows, err := cat.Apply(st)
		if err != nil {
			return err
		}
		fmt.Printf("-- registered table %s (%d rows)\n", st.Name, rows)
		return nil
	case *sql.InsertStmt:
		total, err := cat.Append(st.Table, st.RowValues())
		if err != nil {
			return err
		}
		fmt.Printf("-- inserted %d rows into %s (%d total)\n", len(st.Rows), st.Table, total)
		return nil
	case *sql.PrepareStmt:
		if _, dup := prepped[st.Name]; dup {
			return fmt.Errorf("stemsql: statement %q already prepared", st.Name)
		}
		// Bind now for early diagnostics; EXECUTE re-binds against the
		// catalog as it stands then, exactly like the server's plan cache
		// after a REGISTER invalidation.
		if _, err := sql.Bind(st.Select, cat.Snapshot()); err != nil {
			return err
		}
		prepped[st.Name] = st.Select
		fmt.Printf("-- prepared %s\n", st.Name)
		return nil
	case *sql.ExecuteStmt:
		sel, ok := prepped[st.Name]
		if !ok {
			return fmt.Errorf("stemsql: no prepared statement %q (PREPARE it first)", st.Name)
		}
		stmt = sel
	case *sql.Stmt:
		stmt = st
	default:
		return fmt.Errorf("stemsql: statement type %T is not runnable here", parsed)
	}
	bound, err := sql.Bind(stmt, cat.Snapshot())
	if err != nil {
		return err
	}
	pol, err := policy.ByName(policyName, seed)
	if err != nil {
		return fmt.Errorf("stemsql: %w", err)
	}
	ropts := eddy.Options{Policy: pol, Shards: shards}
	var gov *stem.Governor
	if memBudget > 0 {
		if spillDir == "" {
			spillDir = os.TempDir()
		}
		gov, err = stem.NewSpillGovernor(memBudget, stem.AllocByProbes, spillDir)
		if err != nil {
			return err
		}
		defer gov.Close()
		ropts.Governor = gov
	}
	r, err := eddy.NewRouter(bound.Q, ropts)
	if err != nil {
		return err
	}
	var outs []eddy.Output
	var collector *trace.Collector
	var simEvents uint64
	switch engineName {
	case "sim":
		sim := eddy.NewSim(r)
		if explain {
			collector = trace.NewCollector(r.Modules())
			collector.Attach(sim)
		}
		outs, err = sim.Run()
		simEvents = sim.Events()
	case "concurrent":
		eng := eddy.NewConcurrent(r, nil)
		eng.BatchSize = batch
		eng.Columnar = !rowBatches
		if explain {
			collector = trace.NewCollector(r.Modules())
			collector.AttachConcurrent(eng)
		}
		outs, err = eng.Run()
	default:
		return fmt.Errorf("stemsql: unknown engine %q (want sim or concurrent)", engineName)
	}
	if err != nil {
		return err
	}
	if gov != nil {
		if serr := gov.Err(); serr != nil {
			return fmt.Errorf("stemsql: spill I/O failed: %w", serr)
		}
	}
	// ORDER BY / LIMIT are applied above the eddy.
	tuples := make([]*tuple.Tuple, len(outs))
	atOf := make(map[*tuple.Tuple]float64, len(outs))
	for i, o := range outs {
		tuples[i] = o.T
		atOf[o.T] = o.At.Seconds()
	}
	tuples = bound.Arrange(tuples)

	// Header.
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, oc := range bound.Output {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, oc.Name)
	}
	if timing {
		fmt.Fprint(w, "\t@virtual")
	}
	fmt.Fprintln(w)
	for _, t := range tuples {
		printRow(w, t, bound.Output)
		if timing {
			fmt.Fprintf(w, "\t%.6fs", atOf[t])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "-- %d rows", len(tuples))
	if timing {
		fmt.Fprintf(w, "; %d routing steps", r.Routed())
		if engineName == "sim" {
			fmt.Fprintf(w, "; %d sim events", simEvents)
		}
	}
	fmt.Fprintln(w)
	if collector != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, collector.Report())
	}
	return nil
}

func printRow(w *bufio.Writer, t *tuple.Tuple, out []sql.OutputCol) {
	for i, oc := range out {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, t.Value(oc.Table, oc.Col))
	}
}

// remoteClient runs statements against a stemsd server instead of the
// in-process engine: each statement POSTs to /query and the NDJSON response
// streams to stdout as it arrives, so long-running joins show rows while
// the server's eddy is still routing.
type remoteClient struct {
	base string
	http http.Client
}

func (c *remoteClient) run(stmt string, explain bool) error {
	body, err := json.Marshal(map[string]any{"sql": stmt, "explain": explain})
	if err != nil {
		return fmt.Errorf("stemsql: %v", err)
	}
	resp, err := c.http.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("stemsql: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	sawPayload := false
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return fmt.Errorf("stemsql: malformed response line %q: %v", line, err)
		}
		sawPayload = true
		switch {
		case obj["error"] != nil:
			w.Flush()
			return fmt.Errorf("stemsql: server: %v", obj["error"])
		case obj["row"] != nil:
			// Re-marshal the row object: encoding/json sorts map keys, so
			// column order is stable across rows.
			b, err := json.Marshal(obj["row"])
			if err != nil {
				return fmt.Errorf("stemsql: %v", err)
			}
			w.Write(b)
			w.WriteByte('\n')
		case obj["done"] == true:
			fmt.Fprintf(w, "-- %v rows; %v routing steps; %v ms\n",
				obj["rows"], obj["routing_steps"], obj["elapsed_ms"])
		case obj["trace"] != nil:
			if err := printServerTrace(w, obj["trace"]); err != nil {
				return err
			}
		case obj["prepared"] != nil:
			fmt.Fprintf(w, "-- prepared %v\n", obj["prepared"])
		case obj["registered"] != nil:
			fmt.Fprintf(w, "-- registered table %v (%v rows)\n", obj["registered"], obj["rows"])
		case obj["inserted"] != nil:
			fmt.Fprintf(w, "-- inserted %v rows into %v (%v total)\n", obj["inserted"], obj["table"], obj["total_rows"])
		default:
			// Future line kinds pass through rather than vanish.
			w.Write(line)
			w.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stemsql: reading response: %v", err)
	}
	// A non-200 with no in-band error line (proxy page, panic, empty body)
	// would otherwise vanish; say what the server actually returned.
	if resp.StatusCode != http.StatusOK {
		detail := ""
		if !sawPayload {
			detail = " with no parseable error"
		}
		return fmt.Errorf("stemsql: server returned HTTP %d%s", resp.StatusCode, detail)
	}
	return nil
}

// printServerTrace pretty-prints the final NDJSON trace record of an
// "explain": true server query: a per-module table mirroring
// trace.Collector.Report plus the routing policy's learned per-signature
// estimates when the server included them.
func printServerTrace(w *bufio.Writer, raw any) error {
	b, err := json.Marshal(raw)
	if err != nil {
		return fmt.Errorf("stemsql: %v", err)
	}
	var rec trace.Record
	if err := json.Unmarshal(b, &rec); err != nil {
		return fmt.Errorf("stemsql: decoding trace: %v", err)
	}
	fmt.Fprintf(w, "\n-- explain: %d results, last output at %.6fs\n", rec.Results, rec.LastOutputS)
	fmt.Fprintf(w, "%-24s %10s %10s %12s %12s\n", "module", "visits", "outputs", "selectivity", "busy(s)")
	for _, m := range rec.Modules {
		fmt.Fprintf(w, "%-24s %10d %10d %12.4f %12.6f\n",
			m.Name, m.Visits, m.Outputs, m.Selectivity, m.BusySeconds)
	}
	if len(rec.Policy) > 0 {
		fmt.Fprintf(w, "-- policy state (learned per-signature estimates):\n")
		fmt.Fprintf(w, "%-24s %18s %10s %14s %12s\n", "module", "sig", "visits", "out/visit", "cost(s)")
		for _, p := range rec.Policy {
			fmt.Fprintf(w, "%-24s %18x %10d %14.4f %12.6f\n",
				p.Module, p.Sig, p.Visits, p.OutPerVisit, p.CostSeconds)
		}
	}
	return nil
}

// plans fetches GET /plans and prints the server's named prepared
// statements followed by its plan-cache entries in MRU order.
func (c *remoteClient) plans() bool {
	resp, err := c.http.Get(c.base + "/plans")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stemsql: %v\n", err)
		return false
	}
	defer resp.Body.Close()
	var pl struct {
		Prepared []struct {
			Name string `json:"name"`
			SQL  string `json:"sql"`
		} `json:"prepared"`
		Plans []struct {
			SQL      string `json:"sql"`
			Policy   string `json:"policy"`
			Hits     uint64 `json:"hits"`
			InFlight int64  `json:"in_flight"`
		} `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
		fmt.Fprintf(os.Stderr, "stemsql: decoding /plans: %v\n", err)
		return false
	}
	if len(pl.Prepared) == 0 && len(pl.Plans) == 0 {
		fmt.Println("-- no prepared statements or cached plans")
		return true
	}
	for _, p := range pl.Prepared {
		fmt.Printf("prepared\t%s\t%s\n", p.Name, p.SQL)
	}
	for _, p := range pl.Plans {
		fmt.Printf("plan\t%s\tpolicy=%s hits=%d in_flight=%d\n", p.SQL, p.Policy, p.Hits, p.InFlight)
	}
	return true
}
