// Command stemsql executes SQL select-project-join queries over CSV files
// with the adaptive SteM engine — no plans, no optimizer; the eddy routes.
//
// Usage:
//
//	stemsql -t people=people.csv -t orders=orders.csv \
//	        -q "SELECT people.name, orders.total FROM people, orders WHERE people.id = orders.person AND orders.total >= 100"
//
// Without -q, stemsql reads statements from stdin (one per line; blank line
// or EOF exits). Each source gets a scan access method by default; declare
// an extra asynchronous index with -index table:column:latency, e.g.
// -index people:id:200ms, and pick a routing policy with -policy.
//
// -engine selects the executor: sim (default) is the deterministic
// discrete-event simulator; concurrent runs the goroutine-per-module engine,
// whose eddy moves tuples in batches of -batch (default 64; 1 is
// tuple-at-a-time). -shards hash-partitions each SteM into that many
// sub-stores, giving the concurrent engine one worker per shard.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/csvload"
	"repro/internal/eddy"
	"repro/internal/policy"
	"repro/internal/source"
	"repro/internal/sql"
	"repro/internal/trace"
	"repro/internal/tuple"
)

type tableFlags []string

func (t *tableFlags) String() string     { return strings.Join(*t, ",") }
func (t *tableFlags) Set(v string) error { *t = append(*t, v); return nil }

func main() {
	var tables, indexes tableFlags
	flag.Var(&tables, "t", "source as name=path.csv (repeatable)")
	flag.Var(&indexes, "index", "index access method as table:column:latency (repeatable)")
	q := flag.String("q", "", "SQL statement; omit for a stdin REPL")
	policyName := flag.String("policy", "benefitcost", "routing policy: fixed, lottery, benefitcost")
	engineName := flag.String("engine", "sim", "execution engine: sim (deterministic) or concurrent")
	batch := flag.Int("batch", eddy.DefaultBatchSize, "concurrent engine eddy batch size; 1 is tuple-at-a-time")
	shards := flag.Int("shards", 1, "hash-partitioned shards per SteM (rounded up to a power of two); >1 gives the concurrent engine one worker per shard")
	scanInterval := flag.Duration("scan-interval", time.Microsecond, "virtual inter-arrival pacing of scans")
	seed := flag.Int64("seed", 1, "seed for randomized policies")
	timing := flag.Bool("timing", false, "print per-result virtual emission times and run stats")
	explain := flag.Bool("explain", false, "print a per-module adaptive-execution report after the results")
	flag.Parse()

	cat, err := loadCatalog(tables, indexes, *scanInterval)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(cat) == 0 {
		fmt.Fprintln(os.Stderr, "stemsql: no sources; use -t name=path.csv")
		os.Exit(1)
	}

	runOne := func(stmt string) bool {
		if err := run(stmt, cat, *policyName, *engineName, *batch, *shards, *seed, *timing, *explain); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		return true
	}

	if *q != "" {
		if !runOne(*q) {
			os.Exit(1)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("stemsql> ")
	for sc.Scan() {
		line := strings.TrimSpace(strings.TrimSuffix(sc.Text(), ";"))
		if line == "" {
			break
		}
		runOne(line)
		fmt.Print("stemsql> ")
	}
}

func loadCatalog(tables, indexes tableFlags, scanInterval time.Duration) (sql.MapCatalog, error) {
	cat := sql.MapCatalog{}
	for _, spec := range tables {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("stemsql: bad -t %q (want name=path.csv)", spec)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("stemsql: %w", err)
		}
		data, err := csvload.Load(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		scan := source.ScanSpec{InterArrival: clock.Duration(scanInterval)}
		cat[name] = sql.Source{Data: data, Scan: &scan}
	}
	for _, spec := range indexes {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("stemsql: bad -index %q (want table:column:latency)", spec)
		}
		src, ok := cat[parts[0]]
		if !ok {
			return nil, fmt.Errorf("stemsql: -index references unknown table %q", parts[0])
		}
		col := src.Data.Schema.ColIndex(parts[1])
		if col < 0 {
			return nil, fmt.Errorf("stemsql: -index references unknown column %q of %q", parts[1], parts[0])
		}
		lat, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("stemsql: -index latency: %w", err)
		}
		src.Indexes = append(src.Indexes, source.IndexSpec{
			KeyCols: []int{col}, Latency: clock.Duration(lat), Parallel: 1,
		})
		cat[parts[0]] = src
	}
	return cat, nil
}

func run(stmtSrc string, cat sql.MapCatalog, policyName, engineName string, batch, shards int, seed int64, timing, explain bool) error {
	stmt, err := sql.Parse(stmtSrc)
	if err != nil {
		return err
	}
	bound, err := sql.Bind(stmt, cat)
	if err != nil {
		return err
	}
	var pol policy.Policy
	switch policyName {
	case "fixed":
		pol = policy.NewFixed()
	case "lottery":
		pol = policy.NewLottery(seed)
	case "benefitcost":
		pol = policy.NewBenefitCost(seed)
	default:
		return fmt.Errorf("stemsql: unknown policy %q", policyName)
	}
	r, err := eddy.NewRouter(bound.Q, eddy.Options{Policy: pol, Shards: shards})
	if err != nil {
		return err
	}
	var outs []eddy.Output
	var collector *trace.Collector
	var simEvents uint64
	switch engineName {
	case "sim":
		sim := eddy.NewSim(r)
		if explain {
			collector = trace.NewCollector(r.Modules())
			collector.Attach(sim)
		}
		outs, err = sim.Run()
		simEvents = sim.Events()
	case "concurrent":
		if explain {
			return fmt.Errorf("stemsql: -explain requires -engine sim")
		}
		eng := eddy.NewConcurrent(r, nil)
		eng.BatchSize = batch
		outs, err = eng.Run()
	default:
		return fmt.Errorf("stemsql: unknown engine %q (want sim or concurrent)", engineName)
	}
	if err != nil {
		return err
	}
	// ORDER BY / LIMIT are applied above the eddy.
	tuples := make([]*tuple.Tuple, len(outs))
	atOf := make(map[*tuple.Tuple]float64, len(outs))
	for i, o := range outs {
		tuples[i] = o.T
		atOf[o.T] = o.At.Seconds()
	}
	tuples = bound.Arrange(tuples)

	// Header.
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i, oc := range bound.Output {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, oc.Name)
	}
	if timing {
		fmt.Fprint(w, "\t@virtual")
	}
	fmt.Fprintln(w)
	for _, t := range tuples {
		printRow(w, t, bound.Output)
		if timing {
			fmt.Fprintf(w, "\t%.6fs", atOf[t])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "-- %d rows", len(tuples))
	if timing {
		fmt.Fprintf(w, "; %d routing steps", r.Routed())
		if engineName == "sim" {
			fmt.Fprintf(w, "; %d sim events", simEvents)
		}
	}
	fmt.Fprintln(w)
	if collector != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, collector.Report())
	}
	return nil
}

func printRow(w *bufio.Writer, t *tuple.Tuple, out []sql.OutputCol) {
	for i, oc := range out {
		if i > 0 {
			fmt.Fprint(w, "\t")
		}
		fmt.Fprint(w, t.Value(oc.Table, oc.Col))
	}
}
