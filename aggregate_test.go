package stems

import (
	"testing"
	"time"
)

func aggFixture(t *testing.T) []Row {
	t.Helper()
	res, err := NewQuery().
		Table("emp", Ints("id", "dept", "pay"), [][]int64{
			{1, 10, 100}, {2, 10, 150}, {3, 20, 90}, {4, 20, 60}, {5, 20, 70},
		}).
		Table("dept", Ints("id"), [][]int64{{10}, {20}}).
		Scan("emp", time.Millisecond).
		Scan("dept", time.Millisecond).
		Where("emp.dept", "=", "dept.id").
		Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func TestGroupCount(t *testing.T) {
	rows := aggFixture(t)
	groups := GroupCount(rows, "emp.dept")
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Key != "10" || groups[0].Count != 2 {
		t.Errorf("group 10 = %+v", groups[0])
	}
	if groups[1].Key != "20" || groups[1].Count != 3 {
		t.Errorf("group 20 = %+v", groups[1])
	}
}

func TestGroupSum(t *testing.T) {
	rows := aggFixture(t)
	groups := GroupSum(rows, "emp.dept", "emp.pay")
	if groups[0].Sum != 250 || groups[0].Min != 100 || groups[0].Max != 150 {
		t.Errorf("group 10 = %+v", groups[0])
	}
	if groups[1].Sum != 220 || groups[1].Min != 60 || groups[1].Max != 90 {
		t.Errorf("group 20 = %+v", groups[1])
	}
	if groups[0].String() == "" {
		t.Error("String must render")
	}
}

func TestAggregatorStreaming(t *testing.T) {
	// Online aggregation: fold rows as the engine emits them.
	agg := NewAggregator([]string{"emp.dept"}, "emp.pay")
	_, err := NewQuery().
		Table("emp", Ints("id", "dept", "pay"), [][]int64{
			{1, 10, 100}, {2, 10, 150}, {3, 20, 90},
		}).
		Table("dept", Ints("id"), [][]int64{{10}, {20}}).
		Scan("emp", time.Millisecond).
		Scan("dept", time.Millisecond).
		Where("emp.dept", "=", "dept.id").
		Run(Options{OnResult: agg.Add})
	if err != nil {
		t.Fatal(err)
	}
	groups := agg.Groups()
	if len(groups) != 2 || groups[0].Sum != 250 {
		t.Errorf("streamed groups = %v", groups)
	}
}

func TestAggregatorMultiKey(t *testing.T) {
	rows := aggFixture(t)
	a := NewAggregator([]string{"emp.dept", "dept.id"}, "")
	for _, r := range rows {
		a.Add(r)
	}
	groups := a.Groups()
	if len(groups) != 2 || groups[0].Key != "10,10" {
		t.Errorf("multi-key groups = %v", groups)
	}
}
