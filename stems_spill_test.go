package stems

// Out-of-core equivalence and hygiene tests: real disk spill behind the
// memory governor must never change what a query returns — only where its
// build state lives — and must never leak a spill file, including out of
// canceled runs.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"
	"time"
)

// spillQuery builds a 3-way join R ⋈ S ⋈ T whose SteM build state comfortably
// exceeds small byte budgets: R.a = S.x, S.y = T.key.
func spillQuery(n int) *Query {
	d := n / 4
	if d == 0 {
		d = 1
	}
	e := d / 4
	if e == 0 {
		e = 1
	}
	r := make([][]int64, n)
	for i := range r {
		r[i] = []int64{int64(i), int64(i % d)}
	}
	s := make([][]int64, d)
	for j := range s {
		s[j] = []int64{int64(j), int64(j % e)}
	}
	t := make([][]int64, e)
	for k := range t {
		t[k] = []int64{int64(k), int64(k * 10)}
	}
	return NewQuery().
		Table("R", Ints("key", "a"), r).
		Table("S", Ints("x", "y"), s).
		Table("T", Ints("key", "c"), t).
		Scan("R", time.Microsecond).
		Scan("S", time.Microsecond).
		Scan("T", time.Microsecond).
		Where("R.a", "=", "S.x").
		Where("S.y", "=", "T.key")
}

// resultMultiset canonicalizes a result set for comparison.
func resultMultiset(res *Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, r.String())
	}
	sort.Strings(out)
	return out
}

// TestSpillResultsAgree is the spill/resident equivalence property: the same
// query at budgets {unbounded, tight, pathological-smallest} × shards {1, 4}
// on both engines returns multiset-identical results. The tight budget holds
// roughly a quarter of the build state (so the state exceeds it ≥4×); the
// pathological budget of one byte spills every single row.
func TestSpillResultsAgree(t *testing.T) {
	const rows = 400
	baseline, err := spillQuery(rows).Run(Options{})
	if err != nil {
		t.Fatalf("unbounded run: %v", err)
	}
	want := resultMultiset(baseline)
	if len(want) != rows {
		t.Fatalf("unbounded run returned %d results, want %d", len(want), rows)
	}

	for _, engine := range []Engine{Sim, Concurrent} {
		for _, shards := range []int{1, 4} {
			for _, budget := range []int64{0, 12 << 10, 1} {
				name := fmt.Sprintf("engine=%v/shards=%d/budget=%d", engine, shards, budget)
				t.Run(name, func(t *testing.T) {
					res, err := spillQuery(rows).Run(Options{
						Engine:            engine,
						Shards:            shards,
						MemoryBudgetBytes: budget,
						SpillDir:          t.TempDir(),
					})
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					got := resultMultiset(res)
					if len(got) != len(want) {
						t.Fatalf("got %d results, want %d", len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("result %d: got %s, want %s", i, got[i], want[i])
						}
					}
				})
			}
		}
	}
}

// TestSpillActuallySpills guards the test above against vacuity: under the
// pathological budget the run must really have written rows to disk.
func TestSpillActuallySpills(t *testing.T) {
	dir := t.TempDir()
	res, err := spillQuery(400).Run(Options{MemoryBudgetBytes: 1, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 400 {
		t.Fatalf("got %d rows, want 400", len(res.Rows))
	}
	if res.Stats.SpilledBuilds == 0 {
		t.Fatal("pathological budget spilled nothing — the equivalence test is vacuous")
	}
}

// countFiles walks dir counting regular files.
func countFiles(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(_ string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return n
}

// openFDs counts the process's open file descriptors (linux).
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot count fds: %v", err)
	}
	return len(ents)
}

// TestSpillFileHygiene asserts spill segments (and their descriptors) are
// gone after a completed run and after a mid-join cancellation, and that a
// canceled concurrent run leaves no goroutines behind.
func TestSpillFileHygiene(t *testing.T) {
	dir := t.TempDir()
	fdsBefore := openFDs(t)

	// Completed runs, both engines.
	for _, engine := range []Engine{Sim, Concurrent} {
		if _, err := spillQuery(200).Run(Options{
			Engine: engine, MemoryBudgetBytes: 1, SpillDir: dir,
		}); err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if n := countFiles(t, dir); n != 0 {
			t.Fatalf("engine %v: %d spill files left after completed run", engine, n)
		}
	}

	// Canceled mid-join: the run errors, the files still go.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := spillQuery(200).RunContext(ctx, Options{
		Engine: Concurrent, MemoryBudgetBytes: 1, SpillDir: dir,
	}); err == nil {
		t.Fatal("canceled run returned no error")
	}
	if n := countFiles(t, dir); n != 0 {
		t.Fatalf("%d spill files left after canceled run", n)
	}

	// Descriptors and goroutines unwind (allow scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for openFDs(t) > fdsBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := openFDs(t); got > fdsBefore {
		t.Fatalf("fd leak: %d open before, %d after", fdsBefore, got)
	}
	start := runtime.NumGoroutine()
	for runtime.NumGoroutine() > start && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}
